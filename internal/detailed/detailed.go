// Package detailed is a wirelength-driven detailed placer built on the
// instant-legalization primitive of internal/core, the application that
// motivated MLL (§1 of the paper, following the density-aware detailed
// placement of [11] and [12]): every cell move goes through Multi-row
// Local Legalization, so each intermediate placement is legal and the
// optimizer never has to repair anything.
//
// The move generator is the classic optimal-region move: a cell's ideal
// position is the median of its connected pins. Moves are screened with a
// self-gain estimate (the HPWL change of the cell's own nets if only the
// cell moved) and the realized placement is tracked with an incremental
// per-net HPWL cache updated from Legalizer.LastMoved, so a full pass
// costs O(pins) rather than O(nets²).
package detailed

import (
	"fmt"
	"math"
	"sort"

	"mrlegal/internal/core"
	"mrlegal/internal/design"
	"mrlegal/internal/netlist"
)

// Config tunes the optimizer.
type Config struct {
	// Passes is the number of sweeps over all cells (default 3).
	Passes int
	// MinGain is the minimal estimated HPWL gain (database units) for a
	// move to be attempted (default: one site width).
	MinGain float64
	// MaxDist skips moves whose target is further than this many site
	// widths from the current position (0 = no limit); long moves through
	// dense regions rarely realize their estimated gain.
	MaxDist float64
}

// Stats reports one Optimize run.
type Stats struct {
	Passes     int
	Attempted  int
	Moved      int
	HPWLBefore float64
	HPWLAfter  float64
}

// Optimize improves HPWL by median moves with instant legalization. The
// legalizer's design must already be fully placed and legal.
func Optimize(l *core.Legalizer, nl *netlist.Netlist, cfg Config) Stats {
	if cfg.Passes == 0 {
		cfg.Passes = 3
	}
	d := l.D
	if cfg.MinGain == 0 {
		cfg.MinGain = float64(d.SiteW)
	}

	cache := newHPWLCache(d, nl)
	st := Stats{HPWLBefore: cache.total}

	for pass := 0; pass < cfg.Passes; pass++ {
		st.Passes++
		improvedThisPass := false
		for i := range d.Cells {
			id := design.CellID(i)
			c := d.Cell(id)
			if c.Fixed || !c.Placed {
				continue
			}
			tx, ty, ok := medianTarget(d, nl, id)
			if !ok {
				continue
			}
			if cfg.MaxDist > 0 {
				dist := math.Abs(tx-float64(c.X)) + math.Abs(ty-float64(c.Y))*float64(d.SiteH)/float64(d.SiteW)
				if dist > cfg.MaxDist {
					continue
				}
			}
			gain := selfGain(d, nl, id, tx, ty)
			if gain < cfg.MinGain {
				continue
			}
			st.Attempted++
			if !l.MoveCell(id, tx, ty) {
				continue
			}
			st.Moved++
			improvedThisPass = true
			cache.update(id)
			for _, mid := range l.LastMoved() {
				cache.update(mid)
			}
		}
		if !improvedThisPass {
			break
		}
	}
	st.HPWLAfter = cache.total
	return st
}

// medianTarget returns the median position of the pins connected to id
// (excluding id's own pins), in fractional site units for the cell's
// lower-left corner.
func medianTarget(d *design.Design, nl *netlist.Netlist, id design.CellID) (float64, float64, bool) {
	var xs, ys []float64
	for _, ni := range nl.NetsOf(id) {
		for _, p := range nl.Nets[ni].Pins {
			if p.Cell == id {
				continue
			}
			x, y := pinPos(d, p)
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	if len(xs) == 0 {
		return 0, 0, false
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	c := d.Cell(id)
	// Target the cell center at the median; return the lower-left corner.
	return xs[len(xs)/2] - float64(c.W)/2, ys[len(ys)/2] - float64(c.H)/2, true
}

// pinPos returns a pin position in site units (x in site widths, y in
// rows), using placed coordinates.
func pinPos(d *design.Design, p netlist.Pin) (float64, float64) {
	if p.Cell == design.NoCell {
		return p.DX, p.DY
	}
	c := d.Cell(p.Cell)
	return float64(c.X) + p.DX, float64(c.Y) + p.DY
}

// selfGain estimates the HPWL improvement (database units) of moving only
// cell id so its lower-left corner lands at (tx, ty).
func selfGain(d *design.Design, nl *netlist.Netlist, id design.CellID, tx, ty float64) float64 {
	c := d.Cell(id)
	dx := tx - float64(c.X)
	dy := ty - float64(c.Y)
	var gain float64
	for _, ni := range nl.NetsOf(id) {
		net := &nl.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		nminX, nmaxX := math.Inf(1), math.Inf(-1)
		nminY, nmaxY := math.Inf(1), math.Inf(-1)
		for _, p := range net.Pins {
			x, y := pinPos(d, p)
			nx, ny := x, y
			if p.Cell == id {
				nx += dx
				ny += dy
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			nminX, nmaxX = math.Min(nminX, nx), math.Max(nmaxX, nx)
			nminY, nmaxY = math.Min(nminY, ny), math.Max(nmaxY, ny)
		}
		gain += ((maxX-minX)-(nmaxX-nminX))*float64(d.SiteW) +
			((maxY-minY)-(nmaxY-nminY))*float64(d.SiteH)
	}
	return gain
}

// hpwlCache tracks total HPWL incrementally.
type hpwlCache struct {
	d     *design.Design
	nl    *netlist.Netlist
	per   []float64
	total float64
}

func newHPWLCache(d *design.Design, nl *netlist.Netlist) *hpwlCache {
	c := &hpwlCache{d: d, nl: nl, per: make([]float64, len(nl.Nets))}
	for ni := range nl.Nets {
		c.per[ni] = nl.NetHPWL(d, ni)
		c.total += c.per[ni]
	}
	return c
}

// update refreshes the cached lengths of every net incident to the cell.
func (c *hpwlCache) update(id design.CellID) {
	for _, ni := range c.nl.NetsOf(id) {
		nv := c.nl.NetHPWL(c.d, int(ni))
		c.total += nv - c.per[ni]
		c.per[ni] = nv
	}
}

// Total returns the cached total HPWL (database units).
func (c *hpwlCache) Total() float64 { return c.total }

// SwapStats reports one OptimizeSwaps run.
type SwapStats struct {
	Attempted int
	Swapped   int
	HPWLAfter float64
}

// OptimizeSwaps runs one pass of same-footprint cell swapping, the other
// classic detailed placement move (the paper's §1 notes plain reordering
// breaks with multi-row cells; swapping two cells of identical width and
// height is the multi-row-safe special case, since exchanging equal
// footprints can never create overlap). Pairs are proposed between each
// cell and the best candidate of the same footprint among its nets'
// neighbors; a swap is committed when it reduces the true (cached) HPWL.
func OptimizeSwaps(l *core.Legalizer, nl *netlist.Netlist, maxPairs int) SwapStats {
	d := l.D
	cache := newHPWLCache(d, nl)
	st := SwapStats{}

	for i := range d.Cells {
		if maxPairs > 0 && st.Attempted >= maxPairs {
			break
		}
		a := design.CellID(i)
		ca := d.Cell(a)
		if ca.Fixed || !ca.Placed {
			continue
		}
		// Candidate: the same-footprint cell sharing a net whose position
		// is nearest a's optimal region.
		tx, ty, ok := medianTarget(d, nl, a)
		if !ok {
			continue
		}
		var best design.CellID = design.NoCell
		bestDist := math.Inf(1)
		for _, ni := range nl.NetsOf(a) {
			for _, p := range nl.Nets[ni].Pins {
				b := p.Cell
				if b == a || b == design.NoCell {
					continue
				}
				cb := d.Cell(b)
				if cb.Fixed || !cb.Placed || cb.W != ca.W || cb.H != ca.H {
					continue
				}
				dist := math.Abs(float64(cb.X)-tx) + math.Abs(float64(cb.Y)-ty)
				if dist < bestDist {
					bestDist = dist
					best = b
				}
			}
		}
		if best == design.NoCell {
			continue
		}
		st.Attempted++
		if trySwap(l, cache, a, best) {
			st.Swapped++
		}
	}
	st.HPWLAfter = cache.total
	return st
}

// trySwap exchanges two equal-footprint placed cells and keeps the swap
// only when the cached HPWL improves. Equal footprints make the exchange
// trivially legal, so it bypasses MLL and manipulates the grid directly.
func trySwap(l *core.Legalizer, cache *hpwlCache, a, b design.CellID) bool {
	d := l.D
	ca, cb := d.Cell(a), d.Cell(b)
	if ca.W != cb.W || ca.H != cb.H {
		return false
	}
	// Rail parity: even-height cells on different-parity rows cannot swap.
	if l.Cfg.PowerAlign && ca.H%2 == 0 && (ca.Y%2 != cb.Y%2) {
		return false
	}
	before := cache.total
	swap := func() {
		ax, ay := ca.X, ca.Y
		bx, by := cb.X, cb.Y
		l.G.Remove(a)
		l.G.Remove(b)
		d.Place(a, bx, by)
		d.Place(b, ax, ay)
		if err := l.G.Insert(a); err != nil {
			panic(fmt.Sprintf("detailed: swap insert a: %v", err))
		}
		if err := l.G.Insert(b); err != nil {
			panic(fmt.Sprintf("detailed: swap insert b: %v", err))
		}
		cache.update(a)
		cache.update(b)
	}
	swap()
	if cache.total < before-1e-9 {
		return true
	}
	swap() // revert
	return false
}
