package detailed

import (
	"math"
	"testing"

	"mrlegal/internal/bengen"
	"mrlegal/internal/core"
	"mrlegal/internal/design"
	"mrlegal/internal/dtest"
	"mrlegal/internal/gp"
	"mrlegal/internal/netlist"
	"mrlegal/internal/verify"
)

func preparedLegal(t *testing.T, cells int, density float64, seed int64) (*core.Legalizer, *netlist.Netlist) {
	t.Helper()
	b := bengen.Generate(bengen.Spec{Name: "dp", NumCells: cells, Density: density, Seed: seed})
	gp.Place(b.D, b.NL, gp.Config{Seed: seed})
	l, err := core.NewLegalizer(b.D, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		t.Fatal(err)
	}
	return l, b.NL
}

func TestOptimizeImprovesHPWL(t *testing.T) {
	l, nl := preparedLegal(t, 1200, 0.5, 3)
	st := Optimize(l, nl, Config{})
	if st.HPWLAfter >= st.HPWLBefore {
		t.Fatalf("no improvement: before %v after %v (moved %d)", st.HPWLBefore, st.HPWLAfter, st.Moved)
	}
	if st.Moved == 0 {
		t.Fatal("no moves executed")
	}
	verify.MustLegal(l.D, verify.Options{RequirePlaced: true, PowerAlignment: true})
	if err := l.G.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The incremental cache must agree with a full recomputation.
	if got, want := st.HPWLAfter, nl.HPWL(l.D); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("cache drifted: %v vs %v", got, want)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	run := func() float64 {
		l, nl := preparedLegal(t, 600, 0.45, 7)
		st := Optimize(l, nl, Config{Passes: 2})
		return st.HPWLAfter
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("optimizer not deterministic: %v vs %v", a, b)
	}
}

func TestOptimizeRespectsMaxDist(t *testing.T) {
	l, nl := preparedLegal(t, 600, 0.45, 9)
	st := Optimize(l, nl, Config{Passes: 1, MaxDist: 0.0001, MinGain: 1})
	if st.Attempted != 0 {
		t.Fatalf("MaxDist ignored: %d attempts", st.Attempted)
	}
}

func TestSelfGainMatchesRecompute(t *testing.T) {
	d := dtest.Flat(4, 60)
	a := dtest.Placed(d, 2, 1, 5, 0)
	b := dtest.Placed(d, 2, 1, 40, 2)
	c := dtest.Placed(d, 2, 1, 20, 1)
	nl := netlist.New()
	nl.AddNet("n1", netlist.Pin{Cell: a, DX: 1}, netlist.Pin{Cell: c, DX: 1})
	nl.AddNet("n2", netlist.Pin{Cell: b, DX: 1}, netlist.Pin{Cell: c, DX: 1, DY: 0.5})
	nl.BuildIndex(len(d.Cells))

	before := nl.HPWL(d)
	tx, ty := 30.0, 1.0
	gain := selfGain(d, nl, c, tx, ty)
	// Apply the exact move and recompute.
	d.Place(c, 30, 1)
	after := nl.HPWL(d)
	if math.Abs((before-after)-gain) > 1e-9 {
		t.Fatalf("selfGain=%v, actual=%v", gain, before-after)
	}
}

func TestMedianTarget(t *testing.T) {
	d := dtest.Flat(4, 60)
	a := dtest.Placed(d, 2, 1, 0, 0)
	b := dtest.Placed(d, 2, 1, 10, 1)
	c := dtest.Placed(d, 2, 1, 50, 3)
	m := dtest.Placed(d, 2, 1, 30, 2)
	nl := netlist.New()
	nl.AddNet("n", netlist.Pin{Cell: a}, netlist.Pin{Cell: b}, netlist.Pin{Cell: c}, netlist.Pin{Cell: m})
	nl.BuildIndex(len(d.Cells))
	tx, ty, ok := medianTarget(d, nl, m)
	if !ok {
		t.Fatal("no target")
	}
	// Median of {0,10,50} = 10 (x), {0,1,3} = 1 (y); minus half cell width.
	if tx != 9 || ty != 0.5 {
		t.Fatalf("target = (%v,%v), want (9, 0.5)", tx, ty)
	}
	lone := dtest.Placed(d, 2, 1, 5, 0)
	if _, _, ok := medianTarget(d, nl, lone); ok {
		t.Fatal("unconnected cell should have no target")
	}
}

func TestHPWLCacheUpdates(t *testing.T) {
	d := dtest.Flat(2, 40)
	a := dtest.Placed(d, 2, 1, 0, 0)
	b := dtest.Placed(d, 2, 1, 10, 0)
	nl := netlist.New()
	nl.AddNet("n", netlist.Pin{Cell: a}, netlist.Pin{Cell: b})
	nl.BuildIndex(len(d.Cells))
	c := newHPWLCache(d, nl)
	if c.Total() != nl.HPWL(d) {
		t.Fatal("initial cache wrong")
	}
	d.Place(b, 20, 0)
	c.update(b)
	if math.Abs(c.Total()-nl.HPWL(d)) > 1e-9 {
		t.Fatalf("cache after update %v, want %v", c.Total(), nl.HPWL(d))
	}
	_ = design.NoCell
}

func TestOptimizeSwaps(t *testing.T) {
	l, nl := preparedLegal(t, 1000, 0.5, 21)
	before := nl.HPWL(l.D)
	st := OptimizeSwaps(l, nl, 0)
	if st.Attempted == 0 {
		t.Fatal("no swaps attempted")
	}
	if st.HPWLAfter > before+1e-9 {
		t.Fatalf("swaps made HPWL worse: %v → %v", before, st.HPWLAfter)
	}
	if math.Abs(st.HPWLAfter-nl.HPWL(l.D)) > 1e-6*st.HPWLAfter {
		t.Fatal("swap cache drifted from true HPWL")
	}
	verify.MustLegal(l.D, verify.Options{RequirePlaced: true, PowerAlignment: true})
	if err := l.G.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTrySwapRevertsOnNoGain(t *testing.T) {
	d := dtest.Flat(2, 40)
	a := dtest.Placed(d, 3, 1, 0, 0)
	b := dtest.Placed(d, 3, 1, 30, 0)
	c := dtest.Placed(d, 3, 1, 33, 0)
	nl := netlist.New()
	// a—b are connected; swapping b and c moves b away → no gain.
	nl.AddNet("n", netlist.Pin{Cell: a}, netlist.Pin{Cell: b})
	nl.BuildIndex(len(d.Cells))
	l, err := core.NewLegalizer(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := newHPWLCache(d, nl)
	if trySwap(l, cache, b, c) {
		t.Fatal("swap should not be kept")
	}
	if d.Cell(b).X != 30 || d.Cell(c).X != 33 {
		t.Fatal("revert did not restore positions")
	}
	// Swapping a and b IS an improvement? a at 0, b at 30, net connects
	// them: swapping the two endpoints leaves HPWL identical → rejected.
	if trySwap(l, cache, a, b) {
		t.Fatal("symmetric swap should be rejected (no strict gain)")
	}
	verify.MustLegal(d, verify.Options{RequirePlaced: true})
}

func TestTrySwapParityGuard(t *testing.T) {
	d := dtest.Flat(4, 40)
	// Two double-height cells on different-parity rows.
	a := dtest.Placed(d, 3, 2, 0, 0)
	b := dtest.Placed(d, 3, 2, 20, 1)
	nl := netlist.New()
	nl.AddNet("n", netlist.Pin{Cell: a}, netlist.Pin{Cell: b})
	nl.BuildIndex(len(d.Cells))
	l, err := core.NewLegalizer(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := newHPWLCache(d, nl)
	if trySwap(l, cache, a, b) {
		t.Fatal("parity-violating swap accepted")
	}
}
