// Command mrbench regenerates the paper's evaluation artifacts (see
// DESIGN.md's experiment index):
//
//	mrbench -experiment table1 -scale 200            # Table 1 (E1+E2)
//	mrbench -experiment table1 -skip-ilp -scale 50   # MLL columns only
//	mrbench -experiment relax                        # §6 relaxation (E3)
//	mrbench -experiment evalablation                 # approx vs exact (E4)
//	mrbench -experiment window -bench fft_1          # Rx/Ry sweep (E5)
//	mrbench -experiment baselines                    # Abacus/greedy (E6)
//	mrbench -experiment parallel -scale 400 \
//	        -json BENCH_parallel.json                # worker sweep (docs/PERFORMANCE.md)
//	mrbench -experiment prune -scale 400 \
//	        -json BENCH_prune.json                   # best-first search vs exhaustive
//	mrbench -experiment cache -scale 400 \
//	        -json BENCH_cache.json                   # extraction cache off vs on
//	mrbench -experiment shard -sizes 20000,1000000 \
//	        -json BENCH_shard.json                   # spatial sharding sweep (§7)
//	mrbench -experiment tune -scale 400 \
//	        -json BENCH_tune.json                    # adaptive search guidance (§8)
//	mrbench -experiment eco -sizes 5000,20000 \
//	        -delta-fracs 0.001,0.01,0.05 \
//	        -json BENCH_eco.json                     # incremental vs full relegalization (§9)
//	mrbench -experiment table1 -skip-ilp -metrics \
//	        -trace-out trace.jsonl                   # + Prometheus dump & JSONL trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"mrlegal/internal/experiments"
	"mrlegal/internal/obs"
	"mrlegal/internal/profiling"
)

func main() {
	var (
		exp     = flag.String("experiment", "table1", "table1 | relax | evalablation | window | baselines | heightmix | order | scaling | parallel | prune | cache | shard | tune | eco")
		scale   = flag.Int("scale", 200, "benchmark downscale factor (1 = paper-size, large = fast)")
		skipILP = flag.Bool("skip-ilp", false, "skip the (slow) ILP baseline columns")
		only    = flag.String("only", "", "comma-separated benchmark name filter")
		bench   = flag.String("bench", "fft_1", "benchmark for the window sweep")
		seed    = flag.Int64("seed", 0, "seed offset for sensitivity runs")
		rx      = flag.Int("rx", 0, "local region half-width Rx override (0 = paper default 30)")
		ry      = flag.Int("ry", 0, "local region half-height Ry override (0 = paper default 5)")
		nodes   = flag.Int("ilp-nodes", 0, "branch & bound node cap per local MILP (0 = default)")
		quietP  = flag.Bool("no-progress", false, "suppress per-benchmark progress lines")
		workers = flag.String("workers", "", "comma-separated worker counts for -experiment parallel (default \"1,NumCPU\")")
		shards  = flag.String("shards", "", "comma-separated shard counts for -experiment shard (default \"1,2,4,8\")")
		sizes   = flag.String("sizes", "", "comma-separated synthetic design sizes for -experiment shard/eco (default \"5000,20000\")")

		deltaFracs = flag.String("delta-fracs", "", "comma-separated perturbed-cell fractions for -experiment eco (default \"0.001,0.01,0.05\")")
		jsonOut    = flag.String("json", "", "write the parallel experiment's report as JSON to this file instead of a table")

		metrics   = flag.Bool("metrics", false, "emit the accumulated Prometheus text exposition once to stdout after the experiment (see docs/OBSERVABILITY.md)")
		traceFlag = flag.String("trace-out", "", "write the per-cell JSONL placement trace of every run to this file")
	)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()
	// Explicitly-passed zero or negative counts are configuration errors,
	// not requests for the "auto" default — fail fast with usage.
	if err := rejectNonPositiveListFlags("workers", "shards", "sizes"); err != nil {
		fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
		os.Exit(1)
	}
	defer stop()

	// SIGINT/SIGTERM cancel the experiment context: the in-flight run
	// unwinds at its next placement boundary (reported as a canceled
	// result) and the deferred profile/trace flushes still run, so
	// -cpuprofile and -trace-out output survives an interrupt.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := experiments.Table1Config{
		Scale:       *scale,
		SkipILP:     *skipILP,
		Seed:        *seed,
		Rx:          *rx,
		Ry:          *ry,
		ILPMaxNodes: *nodes,
		Ctx:         ctx,
	}
	if *only != "" {
		cfg.Only = strings.Split(*only, ",")
	}
	if !*quietP {
		cfg.Progress = os.Stderr
	}

	// Observability: one observer shared by every run of the experiment;
	// the exposition is dumped once after the table (docs/OBSERVABILITY.md).
	var observer *obs.Observer
	var traceFile *os.File
	if *metrics || *traceFlag != "" {
		opt := obs.Options{}
		if *traceFlag != "" {
			f, err := os.Create(*traceFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
				stop()
				os.Exit(1)
			}
			traceFile = f
			opt.TraceOut = f
		}
		observer = obs.New(opt)
		cfg.Obs = observer
	}
	finishObs := func() {
		if observer == nil {
			return
		}
		if err := observer.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: trace-out: %v\n", err)
		}
		if traceFile != nil {
			traceFile.Close()
		}
		if *metrics {
			if err := observer.Registry().WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: metrics: %v\n", err)
			}
		}
	}
	defer finishObs()

	switch *exp {
	case "table1":
		rows := experiments.RunTable1(cfg)
		experiments.PrintTable1(os.Stdout, rows, cfg.SkipILP)
	case "relax":
		rows := experiments.RunTable1(cfg)
		experiments.PrintRelaxation(os.Stdout, experiments.Relaxation(rows), !cfg.SkipILP)
	case "evalablation":
		rows := experiments.RunEvalAblation(cfg)
		experiments.PrintEvalAblation(os.Stdout, rows)
	case "window":
		rows := experiments.RunWindowSweep(cfg, *bench,
			[]int{10, 20, 30, 50}, []int{2, 5, 8})
		experiments.PrintWindowSweep(os.Stdout, *bench, rows)
	case "baselines":
		rows := experiments.RunBaselines(cfg)
		experiments.PrintBaselines(os.Stdout, rows)
	case "heightmix":
		rows := experiments.RunHeightMix(cfg)
		experiments.PrintHeightMix(os.Stdout, rows)
	case "order":
		rows := experiments.RunOrderAblation(cfg)
		experiments.PrintOrderAblation(os.Stdout, rows)
	case "scaling":
		rows := experiments.RunScaling(cfg, *bench, []int{800, 400, 200, 100, 50, 25})
		experiments.PrintScaling(os.Stdout, *bench, rows)
	case "parallel":
		counts, err := parseWorkers(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: -workers: %v\n", err)
			stop()
			os.Exit(2)
		}
		for _, w := range counts {
			if w > runtime.NumCPU() {
				fmt.Fprintf(os.Stderr, "mrbench: warning: -workers %d exceeds NumCPU %d; the run is marked oversubscribed in the report and its speedup is not meaningful\n",
					w, runtime.NumCPU())
			}
		}
		rep := experiments.RunParallel(cfg, counts)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = experiments.WriteParallelJSON(f, rep)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
				stop()
				os.Exit(1)
			}
		} else {
			experiments.PrintParallel(os.Stdout, rep)
		}
	case "shard":
		shardCounts, err := parseWorkers(*shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: -shards: %v\n", err)
			stop()
			os.Exit(2)
		}
		sizeList, err := parseWorkers(*sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: -sizes: %v\n", err)
			stop()
			os.Exit(2)
		}
		scfg := experiments.ShardConfig{
			Sizes:       sizeList,
			ShardCounts: shardCounts,
			Seed:        *seed,
			Ctx:         ctx,
		}
		if !*quietP {
			scfg.Progress = os.Stderr
		}
		rep := experiments.RunShard(scfg)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = experiments.WriteShardJSON(f, rep)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
				stop()
				os.Exit(1)
			}
		} else {
			experiments.PrintShard(os.Stdout, rep)
		}
	case "prune":
		rep := experiments.RunPrune(cfg)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = experiments.WritePruneJSON(f, rep)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
				stop()
				os.Exit(1)
			}
		} else {
			experiments.PrintPrune(os.Stdout, rep)
		}
	case "tune":
		rep := experiments.RunTune(cfg)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = experiments.WriteTuneJSON(f, rep)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
				stop()
				os.Exit(1)
			}
		} else {
			experiments.PrintTune(os.Stdout, rep)
		}
	case "eco":
		sizeList, err := parseWorkers(*sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: -sizes: %v\n", err)
			stop()
			os.Exit(2)
		}
		fracList, err := parseFracs(*deltaFracs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: -delta-fracs: %v\n", err)
			stop()
			os.Exit(2)
		}
		ecfg := experiments.EcoConfig{
			Sizes:      sizeList,
			DeltaFracs: fracList,
			Seed:       *seed,
			Ctx:        ctx,
		}
		if !*quietP {
			ecfg.Progress = os.Stderr
		}
		rep := experiments.RunEco(ecfg)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = experiments.WriteEcoJSON(f, rep)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
				stop()
				os.Exit(1)
			}
		} else {
			experiments.PrintEco(os.Stdout, rep)
		}
	case "cache":
		rep := experiments.RunCache(cfg)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err == nil {
				err = experiments.WriteCacheJSON(f, rep)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: %v\n", err)
				stop()
				os.Exit(1)
			}
		} else {
			experiments.PrintCache(os.Stdout, rep)
		}
	default:
		fmt.Fprintf(os.Stderr, "mrbench: unknown experiment %q\n", *exp)
		stop()
		os.Exit(2)
	}
}

// rejectNonPositiveListFlags validates the named comma-separated count
// flags: any explicitly-passed entry that parses as an integer <= 0 is an
// error. Omitted flags keep their default (auto) semantics; non-integer
// junk is left for the per-experiment parser so the error names the
// experiment that needed the flag.
func rejectNonPositiveListFlags(names ...string) error {
	var err error
	flag.Visit(func(f *flag.Flag) {
		if err != nil || !contains(names, f.Name) {
			return
		}
		for _, field := range strings.Split(f.Value.String(), ",") {
			n, perr := strconv.Atoi(strings.TrimSpace(field))
			if perr == nil && n <= 0 {
				err = fmt.Errorf("-%s: count must be positive, got %d", f.Name, n)
				return
			}
		}
	})
	return err
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// parseFracs parses a comma-separated list of fractions in (0, 1].
func parseFracs(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 1 {
			return nil, fmt.Errorf("bad delta fraction %q (want 0 < f <= 1)", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseWorkers parses a comma-separated list of worker counts.
func parseWorkers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
