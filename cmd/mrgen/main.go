// Command mrgen generates a synthetic ISPD-2015-shaped benchmark (design +
// clustered netlist), optionally runs the built-in quadratic global placer
// to fill in input positions, and writes the result in the mrlegal text
// format.
//
// Usage:
//
//	mrgen -name fft_1 -cells 3000 -density 0.84 -gp -o fft_1.mr
//	mrgen -table1 -scale 200 -gp -dir bench/        # the whole roster
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mrlegal/internal/bengen"
	"mrlegal/internal/bookshelf"
	"mrlegal/internal/gp"
	"mrlegal/internal/iodesign"
)

func main() {
	var (
		name      = flag.String("name", "synthetic", "benchmark name")
		cells     = flag.Int("cells", 5000, "number of movable cells")
		density   = flag.Float64("density", 0.5, "target design density")
		dblFrac   = flag.Float64("double", 0.10, "fraction of double-height cells")
		blockages = flag.Float64("blockages", 0, "die fraction reserved for blockages")
		seed      = flag.Int64("seed", 1, "generator seed")
		runGP     = flag.Bool("gp", true, "run the quadratic global placer to set input positions")
		out       = flag.String("o", "-", "output file ('-' = stdout); with -format bookshelf, the base path of the .aux family")
		format    = flag.String("format", "mr", "output format: mr (text) | bookshelf (.aux family)")
		table1    = flag.Bool("table1", false, "generate the full Table-1 roster instead of one benchmark")
		scale     = flag.Int("scale", 200, "cell-count downscale factor for -table1")
		dir       = flag.String("dir", ".", "output directory for -table1")
	)
	flag.Parse()

	emit := func(spec bengen.Spec, path string) error {
		b := bengen.Generate(spec)
		if *runGP {
			st := gp.Place(b.D, b.NL, gp.Config{Seed: spec.Seed})
			fmt.Fprintf(os.Stderr, "%s: %d cells, density %.2f, GP HPWL %.4g m (%d iters)\n",
				spec.Name, len(b.D.Cells), b.D.Density(), st.HPWL*1e-9, st.Iters)
		}
		if *format == "bookshelf" {
			if path == "-" {
				return fmt.Errorf("bookshelf output needs a file base path, not stdout")
			}
			dir, base := filepath.Split(path)
			if dir == "" {
				dir = "."
			}
			base = strings.TrimSuffix(base, ".aux")
			base = strings.TrimSuffix(base, ".mr")
			return bookshelf.Write(bookshelf.DirFS(dir), base, b.D, b.NL)
		}
		w := os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return iodesign.Write(w, b.D, b.NL)
	}

	if *table1 {
		for _, spec := range bengen.Table1Specs(*scale) {
			path := filepath.Join(*dir, spec.Name+".mr")
			if err := emit(spec, path); err != nil {
				fmt.Fprintf(os.Stderr, "mrgen: %s: %v\n", spec.Name, err)
				os.Exit(1)
			}
		}
		return
	}
	spec := bengen.Spec{
		Name:         *name,
		NumCells:     *cells,
		Density:      *density,
		DoubleFrac:   *dblFrac,
		BlockageFrac: *blockages,
		Seed:         *seed,
	}
	if err := emit(spec, *out); err != nil {
		fmt.Fprintf(os.Stderr, "mrgen: %v\n", err)
		os.Exit(1)
	}
}
