// Command mrlegal legalizes a design in the mrlegal text format using the
// paper's MLL algorithm (or the ILP baseline with -ilp), verifies the
// result, prints the Table-1 metrics and writes the legalized design.
//
// Usage:
//
//	mrgen -name demo -cells 2000 -density 0.6 | mrlegal -o legal.mr
//	mrlegal -in fft_1.mr -ilp -noalign -o /dev/null
//	mrlegal -in demo.mr -metrics-addr :8080 -trace-out trace.jsonl -o legal.mr
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mrlegal/internal/bookshelf"
	"mrlegal/internal/constraint"
	"mrlegal/internal/core"
	"mrlegal/internal/design"
	"mrlegal/internal/ilplegal"
	"mrlegal/internal/iodesign"
	"mrlegal/internal/netlist"
	"mrlegal/internal/obs"
	"mrlegal/internal/profiling"
	"mrlegal/internal/render"
	"mrlegal/internal/tune"
	"mrlegal/internal/verify"
)

// stopProfiles flushes any active profiles; fatal and early exits call it
// so -cpuprofile/-trace output survives error paths.
var stopProfiles = func() {}

// flushTrace flushes and closes the -trace-out sink; fatal and early
// exits call it so an interrupted run leaves a valid (if partial) trace
// rather than a truncated one.
var flushTrace = func() {}

func main() {
	var (
		in      = flag.String("in", "-", "input design file ('-' = stdin)")
		out     = flag.String("o", "-", "output design file ('-' = stdout, '' = none)")
		rx      = flag.Int("rx", 30, "local region half-width Rx (sites)")
		ry      = flag.Int("ry", 5, "local region half-height Ry (rows)")
		noalign = flag.Bool("noalign", false, "relax the power-line alignment constraint")
		exact   = flag.Bool("exact", false, "use exact insertion-point evaluation instead of the paper's approximation")
		exhaust = flag.Bool("exhaustive-search", false, "evaluate every insertion point instead of the pruned best-first search (same result, more work)")
		noCache = flag.Bool("no-extract-cache", false, "disable the extraction cache in front of the MLL region extraction (same result, more work)")
		useILP  = flag.Bool("ilp", false, "use the ILP local solver baseline instead of MLL")
		consStr = flag.String("constraints", "", "constraint plugins, ';'-separated specs: fence:x0=..,y0=..,x1=..,y1=..[,minh=N] | spacing:gap=G[,minw=M] | tpl:sep=S (docs/CONSTRAINTS.md)")
		seed    = flag.Int64("seed", 1, "retry-offset random seed")
		quiet   = flag.Bool("q", false, "suppress the metrics report")
		svg     = flag.String("svg", "", "also write an SVG rendering (with displacement vectors) to this file")

		timeout     = flag.Duration("timeout", 0, "overall legalization deadline (0 = none)")
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell placement deadline (0 = none)")
		bestEffort  = flag.Bool("best-effort", false, "place as many cells as possible and report failures instead of aborting")
		auditEvery  = flag.Int("audit-every", 0, "run a full invariant audit every N placements, rolling back the batch on violation (0 = off)")
		workers     = flag.Int("workers", 0, "planning goroutines per round (0 = NumCPU, 1 = serial; results are identical either way)")
		shards      = flag.Int("shards", 0, "spatial die shards per round (0 = off; overrides -workers, results are identical at any count)")
		tuneFlag    = flag.String("tune", "off", "adaptive search guidance: off | online | replay (docs/PERFORMANCE.md §8)")
		tuneLogPath = flag.String("tune-log", "", "policy log file: read as the recorded policy with -tune replay, written with the recorded policy after a -tune online run")

		metricsAddr = flag.String("metrics-addr", "", "serve live Prometheus metrics at http://ADDR/metrics during the run (':0' picks a free port; see docs/OBSERVABILITY.md)")
		traceFlag   = flag.String("trace-out", "", "write the per-cell JSONL placement trace to this file ('-' = stdout)")
	)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()
	// An explicitly-passed zero or negative count is a configuration
	// error, not a request for the flag's "auto/off" default — fail fast
	// with usage instead of silently running in a different mode.
	flag.Visit(func(f *flag.Flag) {
		if f.Name != "workers" && f.Name != "shards" {
			return
		}
		if n, err := strconv.Atoi(f.Value.String()); err == nil && n <= 0 {
			fmt.Fprintf(os.Stderr, "mrlegal: -%s: count must be positive, got %d\n", f.Name, n)
			flag.Usage()
			os.Exit(2)
		}
	})
	stop, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	var d *design.Design
	var nl *netlist.Netlist
	if strings.HasSuffix(*in, ".aux") {
		dir, base := filepath.Split(*in)
		if dir == "" {
			dir = "."
		}
		var err error
		d, nl, err = bookshelf.Read(bookshelf.DirFS(dir), base)
		if err != nil {
			fatal(err)
		}
	} else {
		var r io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		var err error
		d, nl, err = iodesign.Read(r)
		if err != nil {
			fatal(err)
		}
	}
	before := nl.HPWL(d)

	cfg := core.DefaultConfig()
	cfg.Rx, cfg.Ry = *rx, *ry
	cfg.PowerAlign = !*noalign
	cfg.ExactEval = *exact
	cfg.ExhaustiveSearch = *exhaust
	cfg.ExtractCache = !*noCache
	cfg.Seed = *seed
	cfg.CellTimeout = *cellTimeout
	cfg.AuditEvery = *auditEvery
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.PhaseTiming = !*quiet
	if *useILP {
		cfg.Solver = &ilplegal.Solver{}
	}
	cons, err := constraint.Parse(*consStr)
	if err != nil {
		fatal(err)
	}
	cfg.Constraints = cons
	tuneMode, err := tune.ParseMode(*tuneFlag)
	if err != nil {
		fatal(err)
	}
	cfg.Tune = tuneMode
	if tuneMode == tune.Replay {
		if *tuneLogPath == "" {
			fatal(errors.New("-tune replay requires -tune-log"))
		}
		f, err := os.Open(*tuneLogPath)
		if err != nil {
			fatal(err)
		}
		lg, err := tune.DecodeLog(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("tune-log: %w", err))
		}
		cfg.TuneLog = lg
	}

	// Observability: a shared observer feeds the -metrics-addr exposition
	// and the -trace-out JSONL sink (docs/OBSERVABILITY.md).
	var observer *obs.Observer
	var traceFile *os.File
	if *metricsAddr != "" || *traceFlag != "" {
		opt := obs.Options{}
		if *traceFlag != "" {
			if *traceFlag == "-" {
				opt.TraceOut = os.Stdout
			} else {
				f, err := os.Create(*traceFlag)
				if err != nil {
					fatal(err)
				}
				traceFile = f
				opt.TraceOut = f
			}
		}
		observer = obs.New(opt)
		cfg.Obs = observer
		flushTrace = func() {
			if err := observer.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "mrlegal: trace-out: %v\n", err)
			}
			if traceFile != nil {
				traceFile.Close()
				traceFile = nil
			}
		}
		if *metricsAddr != "" {
			srv, err := obs.Serve(*metricsAddr, observer.Registry())
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "mrlegal: serving metrics on http://%s/metrics\n", srv.Addr())
		}
	}

	l, err := core.NewLegalizer(d, cfg)
	if err != nil {
		fatal(err)
	}
	// SIGINT/SIGTERM cancel the run context: LegalizeCtx unwinds at the
	// next placement boundary (the design stays transactionally
	// consistent) and profiles and traces are flushed, not truncated.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	allPlaced := true
	if *bestEffort {
		rep, err := l.LegalizeBestEffort(ctx)
		if err != nil {
			fatal(err)
		}
		allPlaced = len(rep.Failed) == 0
		if !*quiet || !allPlaced {
			fmt.Fprint(os.Stderr, rep.Summary(10))
		}
	} else if err := l.LegalizeCtx(ctx); err != nil {
		if errors.Is(err, core.ErrCanceled) && ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "mrlegal: interrupted; partial placement discarded (use -best-effort to keep partial results)")
		}
		fatal(err)
	}
	elapsed := time.Since(start)

	if tuneMode == tune.Online && *tuneLogPath != "" {
		f, err := os.Create(*tuneLogPath)
		if err != nil {
			fatal(err)
		}
		err = l.RecordedTuneLog().Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("tune-log: %w", err))
		}
	}

	flushTrace()
	if observer != nil {
		if err := observer.TraceErr(); err != nil {
			fatal(fmt.Errorf("trace-out: %w", err))
		}
	}

	if vs := verify.Check(d, verify.Options{RequirePlaced: allPlaced, PowerAlignment: cfg.PowerAlign,
		Extra: cons.Checkers()}, 5); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintf(os.Stderr, "mrlegal: VIOLATION %s\n", v)
		}
		stopProfiles()
		os.Exit(2)
	}
	if !*quiet {
		_, avg := d.TotalDispSites()
		after := nl.HPWL(d)
		st := l.Stats()
		fmt.Fprintf(os.Stderr, "legalized %d cells in %s\n", len(d.Cells), elapsed.Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "  avg displacement : %.4f site widths\n", avg)
		fmt.Fprintf(os.Stderr, "  ΔHPWL            : %+.3f%%\n", netlist.HPWLDelta(before, after)*100)
		fmt.Fprintf(os.Stderr, "  direct placements: %d, MLL calls: %d (%d failed), retry rounds: %d\n",
			st.DirectPlacements, st.MLLCalls, st.MLLFailures, st.RetryRounds)
		if st.CandidatesPruned > 0 || st.SearchNodesCut > 0 || st.WindowsPruned > 0 {
			fmt.Fprintf(os.Stderr, "  best-first search: %d evaluated, %d candidates pruned, %d subtrees cut, %d windows pruned\n",
				st.InsertionPoints, st.CandidatesPruned, st.SearchNodesCut, st.WindowsPruned)
		}
		if st.ExtractCacheHits > 0 || st.ExtractCacheMisses > 0 || st.ExtractCacheInvalidations > 0 {
			fmt.Fprintf(os.Stderr, "  extract cache    : %d hits, %d misses, %d invalidated, %d seeded bounds\n",
				st.ExtractCacheHits, st.ExtractCacheMisses, st.ExtractCacheInvalidations, st.SeedBoundsApplied)
		}
		if st.ConstraintFiltered > 0 {
			fmt.Fprintf(os.Stderr, "  constraints      : %d candidate positions filtered\n", st.ConstraintFiltered)
		}
		if st.TuneDecisions > 0 {
			fmt.Fprintf(os.Stderr, "  search guidance  : %d decisions, %d windows promoted, %d cutoff window skips\n",
				st.TuneDecisions, st.TuneWindowsPromoted, st.TuneWinCutSkips)
		}
		if ph := l.Phases(); ph.Total() > 0 {
			fmt.Fprintf(os.Stderr, "  MLL phase times  : extract %s, enumerate %s, evaluate %s, realize %s\n",
				ph.Extract.Round(time.Millisecond), ph.Enumerate.Round(time.Millisecond),
				ph.Evaluate.Round(time.Millisecond), ph.Realize.Round(time.Millisecond))
		}
		if sc := l.SchedCounters(); sc.Dispatched > 0 {
			fmt.Fprintf(os.Stderr, "  scheduler        : %d dispatched, %d deferred, %d invalidated\n",
				sc.Dispatched, sc.Deferred, sc.Invalidated)
		}
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		if err := render.SVG(f, d, render.Options{ShowDisplacement: true}); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *out != "" {
		if strings.HasSuffix(*out, ".aux") {
			dir, base := filepath.Split(*out)
			if dir == "" {
				dir = "."
			}
			if err := bookshelf.Write(bookshelf.DirFS(dir), strings.TrimSuffix(base, ".aux"), d, nl); err != nil {
				fatal(err)
			}
		} else {
			w := os.Stdout
			if *out != "-" {
				f, err := os.Create(*out)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				w = f
			}
			if err := iodesign.Write(w, d, nl); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrlegal: %v\n", err)
	flushTrace()
	stopProfiles()
	os.Exit(1)
}
