// Command mrserve runs the legalization job server: an HTTP/JSON API
// that accepts design submissions, legalizes them best-effort on a
// bounded worker pool, and serves job status, reports and legalized
// placements. It also hosts incremental (ECO) legalization sessions:
// a legalized design stays live server-side and clients stream framed
// delta batches (move/resize/insert/delete) that relegalize only the
// perturbed neighborhood. See docs/SERVICE.md for the API.
//
// Usage:
//
//	mrserve -addr :8080
//	mrserve -addr 127.0.0.1:0 -addr-file /tmp/mrserve.addr -workers 4
//
// The server shuts down gracefully on SIGINT/SIGTERM: admission stops
// (readyz answers 503), in-flight jobs drain within -drain-timeout (then
// are canceled), and trace output is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"mrlegal/internal/constraint"
	"mrlegal/internal/core"
	"mrlegal/internal/jobq"
	"mrlegal/internal/obs"
	"mrlegal/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (':0' picks a free port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file once serving (for scripts)")

		workers    = flag.Int("workers", 0, "job worker pool size (0 = NumCPU)")
		queueBound = flag.Int("queue-bound", 64, "global queued-job bound; submissions beyond it answer 429")
		perTenant  = flag.Int("per-tenant", 16, "per-tenant in-flight (queued+running) cap; beyond it answers 429")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline when the client sets none")
		maxWorkers = flag.Int("max-workers", 0, "cap on per-job planning workers a submission may request (0 = default 4)")
		maxShards  = flag.Int("max-shards", 0, "cap on per-job spatial shard counts a submission may request (0 = default 16)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline; jobs still running after it are canceled")
		maxBody    = flag.Int64("max-body", 64<<20, "maximum request body size in bytes")

		maxSessions       = flag.Int("max-sessions", 0, "cap on concurrently open ECO sessions across all tenants (0 = default 16)")
		sessionsPerTenant = flag.Int("sessions-per-tenant", 0, "cap on concurrently open ECO sessions per tenant (0 = default 4)")

		rx      = flag.Int("rx", 30, "local region half-width Rx (sites)")
		ry      = flag.Int("ry", 5, "local region half-height Ry (rows)")
		noalign = flag.Bool("noalign", false, "relax the power-line alignment constraint")
		seed    = flag.Int64("seed", 1, "retry-offset random seed")
		consStr = flag.String("constraints", "", "base constraint plugins for every job, ';'-separated specs (see mrlegal -constraints; jobs may override via config.constraints)")

		traceFlag = flag.String("trace-out", "", "write per-cell JSONL placement traces to this file")
	)
	flag.Parse()
	// An explicitly-passed zero or negative count is a configuration
	// error, not a request for the flag's "auto/default" semantics — fail
	// fast with usage instead of silently running in a different mode.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers", "max-workers", "max-shards", "max-sessions", "sessions-per-tenant":
			if n, err := strconv.Atoi(f.Value.String()); err == nil && n <= 0 {
				fmt.Fprintf(os.Stderr, "mrserve: -%s: count must be positive, got %d\n", f.Name, n)
				flag.Usage()
				os.Exit(2)
			}
		}
	})

	base := core.DefaultConfig()
	base.Rx, base.Ry = *rx, *ry
	base.PowerAlign = !*noalign
	base.Seed = *seed
	base.Workers = 1 // the pool provides cross-job parallelism
	cons, err := constraint.Parse(*consStr)
	if err != nil {
		fatal(err)
	}
	base.Constraints = cons

	opt := obs.Options{}
	var traceFile *os.File
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		opt.TraceOut = f
	}
	observer := obs.New(opt)
	base.Obs = observer

	srv, err := service.New(service.Config{
		Addr: *addr,
		Queue: jobq.Config{
			Workers:    *workers,
			QueueBound: *queueBound,
			PerTenant:  *perTenant,
			JobTimeout: *jobTimeout,
		},
		Sessions: jobq.SessionConfig{
			MaxSessions: *maxSessions,
			PerTenant:   *sessionsPerTenant,
		},
		BaseCfg: &base,
		Limits: service.Limits{
			MaxWorkers: *maxWorkers,
			MaxShards:  *maxShards,
		},
		MaxBodyBytes: *maxBody,
		DrainTimeout: *drain,
		Obs:          observer,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := srv.Start(); err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "mrserve: listening on http://%s\n", srv.Addr())

	<-ctx.Done()
	stop() // a second signal kills immediately instead of re-draining
	fmt.Fprintf(os.Stderr, "mrserve: shutdown requested, draining (deadline %s)\n", *drain)
	err = srv.Close()
	if traceFile != nil {
		if cerr := traceFile.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("trace-out: %w", cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrserve: %v\n", err)
	os.Exit(1)
}
