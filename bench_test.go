// Benchmarks regenerating the paper's evaluation artifacts (one bench per
// table/figure element; see DESIGN.md's experiment index). Each bench
// legalizes a freshly cloned copy of a pre-prepared benchmark, so b.N
// iterations measure the full legalization flow. Absolute numbers depend
// on this machine; the paper-facing results are produced by cmd/mrbench
// and recorded in EXPERIMENTS.md.
package mrlegal_test

import (
	"bytes"
	"fmt"
	"testing"

	"mrlegal/internal/bengen"
	"mrlegal/internal/bookshelf"
	"mrlegal/internal/core"
	"mrlegal/internal/design"
	"mrlegal/internal/detailed"
	"mrlegal/internal/experiments"
	"mrlegal/internal/geom"
	"mrlegal/internal/gp"
	"mrlegal/internal/ilplegal"
	"mrlegal/internal/iodesign"
	"mrlegal/internal/obs"
	"mrlegal/internal/render"
	"mrlegal/internal/segment"
	"mrlegal/internal/tetris"

	ab "mrlegal/internal/abacus"
)

// prep caches prepared (generated + globally placed) benchmarks across
// benches.
var prepCache = map[string]*experiments.Prepared{}

func prepared(b *testing.B, name string, scale int) *experiments.Prepared {
	return prepared2(b, name, scale)
}

func prepared2(b testing.TB, name string, scale int) *experiments.Prepared {
	b.Helper()
	key := fmt.Sprintf("%s/%d", name, scale)
	if p, ok := prepCache[key]; ok {
		return p
	}
	for _, spec := range bengen.Table1Specs(scale) {
		if spec.Name == name {
			p := experiments.Prepare(spec, 0)
			prepCache[key] = p
			return p
		}
	}
	b.Fatalf("unknown benchmark %q", name)
	return nil
}

func legalizeOnce(b *testing.B, p *experiments.Prepared, cfg core.Config) {
	b.Helper()
	res := experiments.RunOne(p, cfg)
	if res.Err != "" {
		b.Fatalf("legalization failed: %s", res.Err)
	}
	b.ReportMetric(res.AvgDisp, "disp-sites/cell")
	b.ReportMetric(res.DeltaHPWL*100, "ΔHPWL-%")
}

// --- Table 1, "Power Line Aligned", Ours column (E1) ---

func BenchmarkTable1AlignedOurs(b *testing.B) {
	for _, name := range []string{"fft_a", "fft_1", "des_perf_b"} {
		b.Run(name, func(b *testing.B) {
			p := prepared(b, name, 400)
			cfg := core.DefaultConfig()
			for i := 0; i < b.N; i++ {
				legalizeOnce(b, p, cfg)
			}
		})
	}
}

// --- Table 1, "Power Line Not Aligned", Ours column (E2) ---

func BenchmarkTable1RelaxedOurs(b *testing.B) {
	for _, name := range []string{"fft_a", "fft_1", "des_perf_b"} {
		b.Run(name, func(b *testing.B) {
			p := prepared(b, name, 400)
			cfg := core.DefaultConfig()
			cfg.PowerAlign = false
			for i := 0; i < b.N; i++ {
				legalizeOnce(b, p, cfg)
			}
		})
	}
}

// --- Table 1, ILP baseline columns (E1+E2; the slow side of the paper's
// 185× runtime ratio) ---

func BenchmarkTable1AlignedILP(b *testing.B) {
	p := prepared(b, "fft_a", 400)
	cfg := core.DefaultConfig()
	cfg.Solver = &ilplegal.Solver{}
	for i := 0; i < b.N; i++ {
		legalizeOnce(b, p, cfg)
	}
}

func BenchmarkTable1RelaxedILP(b *testing.B) {
	p := prepared(b, "fft_a", 400)
	cfg := core.DefaultConfig()
	cfg.PowerAlign = false
	cfg.Solver = &ilplegal.Solver{}
	for i := 0; i < b.N; i++ {
		legalizeOnce(b, p, cfg)
	}
}

// --- §6 relaxation experiment (E3): aligned vs relaxed displacement ---

func BenchmarkRelaxationExperiment(b *testing.B) {
	// Use a mid-size design: on the tiniest roster entries the aligned vs
	// relaxed difference is inside run-to-run noise (see EXPERIMENTS.md E3).
	p := prepared(b, "superblue19", 200)
	aligned := core.DefaultConfig()
	relaxed := core.DefaultConfig()
	relaxed.PowerAlign = false
	for i := 0; i < b.N; i++ {
		ra := experiments.RunOne(p, aligned)
		rr := experiments.RunOne(p, relaxed)
		if ra.Err != "" || rr.Err != "" {
			b.Fatal("legalization failed")
		}
		if ra.AvgDisp > 0 {
			b.ReportMetric((1-rr.AvgDisp/ra.AvgDisp)*100, "disp-reduction-%")
		}
	}
}

// --- Evaluation ablation (E4): §5.2 approximate vs exact ---

func BenchmarkEvalApprox(b *testing.B) {
	p := prepared(b, "fft_1", 400)
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		legalizeOnce(b, p, cfg)
	}
}

func BenchmarkEvalExact(b *testing.B) {
	p := prepared(b, "fft_1", 400)
	cfg := core.DefaultConfig()
	cfg.ExactEval = true
	for i := 0; i < b.N; i++ {
		legalizeOnce(b, p, cfg)
	}
}

// --- Window-size ablation (E5): the paper's Rx=30, Ry=5 choice ---

func BenchmarkWindowSize(b *testing.B) {
	p := prepared(b, "fft_1", 400)
	for _, w := range []struct{ rx, ry int }{{10, 2}, {30, 5}, {50, 8}} {
		b.Run(fmt.Sprintf("Rx%dRy%d", w.rx, w.ry), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Rx, cfg.Ry = w.rx, w.ry
			for i := 0; i < b.N; i++ {
				legalizeOnce(b, p, cfg)
			}
		})
	}
}

// --- Related-work baselines (E6) ---

func BenchmarkBaselineAbacus(b *testing.B) {
	p := prepared(b, "fft_a", 400)
	for i := 0; i < b.N; i++ {
		d := p.Bench.D.Clone()
		if _, err := ab.Legalize(d, ab.Config{PowerAlign: true}); err != nil {
			b.Fatal(err)
		}
		_, avg := d.TotalDispSites()
		b.ReportMetric(avg, "disp-sites/cell")
	}
}

func BenchmarkBaselineGreedy(b *testing.B) {
	p := prepared(b, "fft_a", 400)
	for i := 0; i < b.N; i++ {
		d := p.Bench.D.Clone()
		if err := tetris.Legalize(d, tetris.Config{PowerAlign: true}); err != nil {
			b.Fatal(err)
		}
		_, avg := d.TotalDispSites()
		b.ReportMetric(avg, "disp-sites/cell")
	}
}

// --- MLL primitive micro-benches ---

func BenchmarkRegionExtraction(b *testing.B) {
	p := prepared(b, "fft_1", 200)
	d := p.Bench.D.Clone()
	cfg := core.DefaultConfig()
	l, err := core.NewLegalizer(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		b.Fatal(err)
	}
	bb := d.Bounds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := bb.X + (i*37)%max(1, bb.W-66)
		y := bb.Y + (i*13)%max(1, bb.H-11)
		r := core.ExtractRegion(l.G, geom.Rect{X: x, Y: y, W: 66, H: 11})
		if r.NumLocalCells() < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkInsertionPointEnumeration(b *testing.B) {
	p := prepared(b, "fft_1", 200)
	d := p.Bench.D.Clone()
	l, err := core.NewLegalizer(d, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		b.Fatal(err)
	}
	bb := d.Bounds()
	regions := make([]*core.Region, 0, 16)
	for i := 0; i < 16; i++ {
		x := bb.X + (i*53)%max(1, bb.W-66)
		y := bb.Y + (i*7)%max(1, bb.H-11)
		regions = append(regions, core.ExtractRegion(l.G, geom.Rect{X: x, Y: y, W: 66, H: 11}))
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		r := regions[i%len(regions)]
		r.VisitInsertionPoints(3, 2, nil, func(*core.InsertionPoint) bool {
			n++
			return true
		})
	}
	if n < 0 {
		b.Fatal("impossible")
	}
}

func BenchmarkSingleMLLCall(b *testing.B) {
	p := prepared(b, "fft_1", 200)
	base := p.Bench.D.Clone()
	l, err := core.NewLegalizer(base, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		b.Fatal(err)
	}
	ids := make([]int, 0, len(base.Cells))
	for i := range base.Cells {
		if !base.Cells[i].Fixed {
			ids = append(ids, i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := base.Cells[ids[i%len(ids)]].ID
		c := base.Cell(id)
		// Move each cell a few sites away and back: two MLL invocations.
		if !l.MoveCell(id, float64(c.X+5), float64(c.Y)) {
			continue
		}
	}
}

// BenchmarkSingleMLLCallObserved is BenchmarkSingleMLLCall with the
// observability layer attached (metrics + event ring, no trace sink);
// comparing the two quantifies the instrumentation overhead quoted in
// docs/OBSERVABILITY.md.
func BenchmarkSingleMLLCallObserved(b *testing.B) {
	p := prepared(b, "fft_1", 200)
	base := p.Bench.D.Clone()
	cfg := core.DefaultConfig()
	cfg.Obs = obs.New(obs.Options{})
	l, err := core.NewLegalizer(base, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		b.Fatal(err)
	}
	ids := make([]int, 0, len(base.Cells))
	for i := range base.Cells {
		if !base.Cells[i].Fixed {
			ids = append(ids, i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := base.Cells[ids[i%len(ids)]].ID
		c := base.Cell(id)
		if !l.MoveCell(id, float64(c.X+5), float64(c.Y)) {
			continue
		}
	}
}

// --- Substrate benches ---

func BenchmarkGlobalPlacement(b *testing.B) {
	spec := bengen.Spec{Name: "gp", NumCells: 2000, Density: 0.5, Seed: 9}
	bench := bengen.Generate(spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := bench.D.Clone()
		gp.Place(d, bench.NL, gp.Config{Seed: int64(i)})
	}
}

func BenchmarkSegmentGridRebuild(b *testing.B) {
	p := prepared(b, "superblue12", 400)
	d := p.Bench.D.Clone()
	l, err := core.NewLegalizer(d, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := segment.Build(d)
		if err := g.RebuildOccupancy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHPWL(b *testing.B) {
	p := prepared(b, "superblue12", 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Bench.NL.HPWL(p.Bench.D) <= 0 {
			b.Fatal("bad HPWL")
		}
	}
}

// --- Detailed placement application benches (§1 motivation) ---

func BenchmarkDetailedPlaceMedianMoves(b *testing.B) {
	p := prepared(b, "fft_2", 200)
	for i := 0; i < b.N; i++ {
		d := p.Bench.D.Clone()
		l, err := core.NewLegalizer(d, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Legalize(); err != nil {
			b.Fatal(err)
		}
		st := detailed.Optimize(l, p.Bench.NL, detailed.Config{Passes: 2})
		if st.HPWLBefore > 0 {
			b.ReportMetric((st.HPWLBefore-st.HPWLAfter)/st.HPWLBefore*100, "HPWL-gain-%")
		}
	}
}

func BenchmarkDetailedPlaceSwaps(b *testing.B) {
	p := prepared(b, "fft_2", 200)
	for i := 0; i < b.N; i++ {
		d := p.Bench.D.Clone()
		l, err := core.NewLegalizer(d, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Legalize(); err != nil {
			b.Fatal(err)
		}
		detailed.OptimizeSwaps(l, p.Bench.NL, 0)
	}
}

// --- I/O substrate benches ---

func BenchmarkIodesignRoundTrip(b *testing.B) {
	p := prepared(b, "superblue19", 400)
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := iodesign.Write(&buf, p.Bench.D, p.Bench.NL); err != nil {
			b.Fatal(err)
		}
		if _, _, err := iodesign.Read(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkBookshelfRoundTrip(b *testing.B) {
	p := prepared(b, "superblue19", 400)
	for i := 0; i < b.N; i++ {
		fs := bookshelf.NewMemFS()
		if err := bookshelf.Write(fs, "b", p.Bench.D, p.Bench.NL); err != nil {
			b.Fatal(err)
		}
		if _, _, err := bookshelf.Read(fs, "b.aux"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderSVG(b *testing.B) {
	p := prepared(b, "fft_2", 200)
	d := p.Bench.D.Clone()
	l, err := core.NewLegalizer(d, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := render.SVG(&buf, d, render.Options{ShowDisplacement: true}); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// --- ILP substrate bench ---

func BenchmarkILPLocalProblem(b *testing.B) {
	p := prepared(b, "fft_2", 400)
	d := p.Bench.D.Clone()
	l, err := core.NewLegalizer(d, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		b.Fatal(err)
	}
	bb := d.Bounds()
	r := core.ExtractRegion(l.G, geom.Rect{X: bb.X + bb.W/3, Y: bb.Y + bb.H/3, W: 66, H: 12})
	sol := &ilplegal.Solver{}
	mi := d.AddMaster(design.Master{Name: "b", Width: 3, Height: 2, BottomRail: design.VSS})
	id := d.AddCell("t", mi, float64(bb.X+bb.W/2), float64(bb.Y+bb.H/2))
	c := d.Cell(id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol.SelectInsertionPoint(r, c, c.GX, c.GY, nil)
	}
}
