module mrlegal

go 1.22
