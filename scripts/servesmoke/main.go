// Command servesmoke is the CI end-to-end exercise for mrserve: it
// builds and starts the real binary, submits a generated-and-globally-
// placed benchmark over HTTP, polls the job to completion, and checks
// the served placement checksum is byte-identical to running the
// library directly on the same input. It finishes by sending SIGTERM
// and requiring a clean (exit 0) graceful shutdown.
//
// Run from the repository root:
//
//	go run ./scripts/servesmoke
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mrlegal/internal/bengen"
	"mrlegal/internal/core"
	"mrlegal/internal/experiments"
	"mrlegal/internal/iodesign"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Build the real binary — the smoke test must cover main(), not just
	// the service package.
	bin := filepath.Join(tmp, "mrserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/mrserve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build mrserve: %w", err)
	}

	addrFile := filepath.Join(tmp, "addr")
	srv := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "2",
		"-drain-timeout", "30s",
	)
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("start mrserve: %w", err)
	}
	// On any failure path make sure the server dies with us.
	defer srv.Process.Kill()

	addr, err := waitForAddr(addrFile, 10*time.Second)
	if err != nil {
		return err
	}
	base := "http://" + addr

	// A small Table-1-style input: generated netlist, global placement.
	p := experiments.Prepare(bengen.Spec{
		Name: "smoke", NumCells: 400, Density: 0.5, Seed: 1,
	}, 0)
	var buf bytes.Buffer
	if err := iodesign.Write(&buf, p.Bench.D, p.Bench.NL); err != nil {
		return err
	}
	text := buf.String()

	// Ground truth: the library, directly, with the server's defaults.
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	d, _, err := iodesign.Read(strings.NewReader(text))
	if err != nil {
		return err
	}
	l, err := core.NewLegalizer(d, cfg)
	if err != nil {
		return err
	}
	if _, err := l.LegalizeBestEffort(context.Background()); err != nil {
		return err
	}
	want := fmt.Sprintf("%016x", d.PlacementChecksum())

	// Submit over the wire and poll to a terminal state.
	body, err := json.Marshal(map[string]any{"design_text": text})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d, decode %v", resp.StatusCode, err)
	}
	fmt.Printf("servesmoke: submitted job %s\n", job.ID)

	var report struct {
		PlacementChecksum string `json:"placement_checksum"`
		Placed            int    `json:"placed"`
		TimedOut          bool   `json:"timed_out"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s never finished", job.ID)
		}
		r, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			return err
		}
		var status struct {
			State string `json:"state"`
			Error *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		err = json.NewDecoder(r.Body).Decode(&status)
		r.Body.Close()
		if err != nil {
			return err
		}
		if status.State == "succeeded" {
			break
		}
		if status.State == "failed" || status.State == "canceled" {
			return fmt.Errorf("job %s ended %s: %+v", job.ID, status.State, status.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	r, err := http.Get(base + "/v1/jobs/" + job.ID + "/report")
	if err != nil {
		return err
	}
	err = json.NewDecoder(r.Body).Decode(&report)
	r.Body.Close()
	if err != nil || r.StatusCode != http.StatusOK {
		return fmt.Errorf("report: status %d, decode %v", r.StatusCode, err)
	}

	if report.PlacementChecksum != want {
		return fmt.Errorf("checksum mismatch: service %s, direct %s",
			report.PlacementChecksum, want)
	}
	fmt.Printf("servesmoke: checksum %s matches direct run (placed %d)\n",
		report.PlacementChecksum, report.Placed)

	// The placement text must reload to the same checksum.
	pr, err := http.Get(base + "/v1/jobs/" + job.ID + "/placement")
	if err != nil {
		return err
	}
	d2, _, err := iodesign.Read(pr.Body)
	pr.Body.Close()
	if err != nil {
		return fmt.Errorf("placement endpoint: %w", err)
	}
	if got := fmt.Sprintf("%016x", d2.PlacementChecksum()); got != want {
		return fmt.Errorf("served placement checksum %s, want %s", got, want)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("mrserve exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(45 * time.Second):
		return fmt.Errorf("mrserve did not exit within 45s of SIGTERM")
	}
	fmt.Println("servesmoke: graceful shutdown OK")
	return nil
}

// waitForAddr polls for the -addr-file the server writes once listening.
func waitForAddr(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(path)
		if err == nil && len(bytes.TrimSpace(b)) > 0 {
			return string(bytes.TrimSpace(b)), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("address file %s never appeared", path)
}
