#!/bin/sh
# Coverage floors for the observability work (docs/OBSERVABILITY.md):
# internal/obs carries the highest floor because the layer is pure
# plumbing that only tests exercise deliberately; internal/core's floor
# pins the pre-observability level so instrumentation can never dilute it.
set -eu

check() {
	pkg=$1
	floor=$2
	out=$(go test -cover "$pkg")
	echo "$out"
	pct=$(echo "$out" | awk '{for (i = 1; i <= NF; i++) if ($i ~ /%$/) print substr($i, 1, length($i) - 1)}')
	if [ -z "$pct" ]; then
		echo "cover.sh: no coverage figure for $pkg" >&2
		exit 1
	fi
	ok=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')
	if [ "$ok" != 1 ]; then
		echo "cover.sh: $pkg coverage $pct% is below the $floor% floor" >&2
		exit 1
	fi
}

check mrlegal/internal/obs 90.0
check mrlegal/internal/core 88.0
check mrlegal/internal/constraint 90.0
