// Detailed placement with instant legalization — the application that
// motivated MLL (§1: "for every cell move, the detailed placer performs
// legalization such that all intermediate placement solutions are
// legal").
//
// The example runs a simple wirelength-driven detailed placer: for a few
// passes, every cell is offered a move to the median position of its
// connected cells (the classic optimal-region move); the move is executed
// through MoveCell, which locally legalizes it, so the placement is legal
// after every accepted move and rejected moves leave no trace.
package main

import (
	"fmt"
	"log"
	"sort"

	"mrlegal"
)

// optimalRegion returns the median x/y of the cells connected to id
// (excluding id itself), the classic detailed-placement target.
func optimalRegion(d *mrlegal.Design, nl *mrlegal.Netlist, id mrlegal.CellID) (float64, float64, bool) {
	var xs, ys []float64
	for _, ni := range nl.NetsOf(id) {
		for _, p := range nl.Nets[ni].Pins {
			if p.Cell == id || p.Cell == mrlegal.NoCell {
				continue
			}
			c := d.Cell(p.Cell)
			xs = append(xs, float64(c.X)+p.DX)
			ys = append(ys, float64(c.Y)+p.DY)
		}
	}
	if len(xs) == 0 {
		return 0, 0, false
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	return xs[len(xs)/2], ys[len(ys)/2], true
}

func main() {
	b := mrlegal.GenerateBenchmark(mrlegal.BenchmarkSpec{
		Name: "dp", NumCells: 2500, Density: 0.55, Seed: 5,
	})
	d, nl := b.D, b.NL
	mrlegal.GlobalPlace(d, nl, mrlegal.GlobalPlaceConfig{Seed: 5})

	l, err := mrlegal.NewLegalizer(d, mrlegal.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		log.Fatal(err)
	}
	start := nl.HPWL(d)
	fmt.Printf("legalized %d cells; HPWL %.5g\n", len(d.Cells), start)

	// Variant A: the built-in optimizer (estimated-gain screening +
	// incremental HPWL cache; see internal/detailed).
	st := mrlegal.DetailedPlace(l, nl, mrlegal.DetailedPlaceConfig{Passes: 3})
	fmt.Printf("built-in optimizer: %d/%d moves executed over %d passes, HPWL %.5g → %.5g\n",
		st.Moved, st.Attempted, st.Passes, st.HPWLBefore, st.HPWLAfter)

	// Variant B: a hand-rolled greedy pass with exact accept/reject, to
	// show the raw MoveCell API. Undoing a move is just another
	// instant-legalized move.
	accepted, tried := 0, 0
	for i := range d.Cells {
		id := mrlegal.CellID(i)
		if d.Cell(id).Fixed {
			continue
		}
		tx, ty, ok := optimalRegion(d, nl, id)
		if !ok {
			continue
		}
		before := nl.HPWL(d)
		c := d.Cell(id)
		oldX, oldY := c.X, c.Y
		if !l.MoveCell(id, tx, ty) {
			continue
		}
		tried++
		if nl.HPWL(d) >= before {
			l.MoveCell(id, float64(oldX), float64(oldY))
		} else {
			accepted++
		}
	}
	fmt.Printf("greedy pass: %d/%d moves improved HPWL → %.5g\n", accepted, tried, nl.HPWL(d))

	// Variant C: equal-footprint cell swapping — the multi-row-safe
	// special case of the classic reordering move.
	sw := mrlegal.DetailedPlaceSwaps(l, nl, 0)
	fmt.Printf("swap pass: %d/%d pairs swapped, HPWL → %.5g\n", sw.Swapped, sw.Attempted, sw.HPWLAfter)
	final := nl.HPWL(d)
	if !mrlegal.IsLegal(d, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
		log.Fatal("placement became illegal")
	}
	fmt.Printf("detailed placement improved HPWL by %.2f%%; placement legal\n", (start-final)/start*100)
}
