// Cell sizing with instant legalization — the gate-sizing scenario from
// the paper's introduction: "in gate sizing, we may want to locally
// legalize the placement after cell size changes."
//
// The example legalizes a benchmark, then upsizes a batch of cells (as a
// timing optimizer would on a critical path) and uses MLL to locally
// re-legalize each one; the placement is legal after every single resize.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mrlegal"
)

func main() {
	b := mrlegal.GenerateBenchmark(mrlegal.BenchmarkSpec{
		Name: "sizing", NumCells: 3000, Density: 0.62, Seed: 7,
	})
	d := b.D
	mrlegal.GlobalPlace(d, b.NL, mrlegal.GlobalPlaceConfig{Seed: 7})

	l, err := mrlegal.NewLegalizer(d, mrlegal.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial placement legal, density %.2f\n", d.Density())

	// Pretend the timer handed us 200 critical cells to upsize by 1-3
	// sites each, and 100 to downsize.
	rng := rand.New(rand.NewSource(3))
	up, upOK, down, downOK := 0, 0, 0, 0
	for i := 0; i < 300; i++ {
		id := mrlegal.CellID(rng.Intn(len(d.Cells)))
		c := d.Cell(id)
		if i < 200 {
			up++
			if l.ResizeCell(id, c.W+1+rng.Intn(3)) {
				upOK++
			}
		} else {
			down++
			if c.W > 1 && l.ResizeCell(id, c.W-1) {
				downOK++
			}
		}
		// The invariant the paper's "instant legalization" buys us: the
		// placement is legal after EVERY operation, so the timer can
		// re-query capacitances at any point.
		if !mrlegal.IsLegal(d, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
			log.Fatalf("placement became illegal after operation %d", i)
		}
	}
	fmt.Printf("upsized %d/%d cells, downsized %d/%d cells — placement legal throughout\n",
		upOK, up, downOK, down)

	_, avg := d.TotalDispSites()
	fmt.Printf("average displacement from global placement: %.3f sites\n", avg)
}
