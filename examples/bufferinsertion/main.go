// Buffer insertion with instant legalization — the second incremental
// scenario from the paper's introduction: "In buffer insertion, we may
// want to legalize the solution locally to remove overlapping induced by
// the newly inserted buffer."
//
// The example finds the longest nets of a legalized benchmark, inserts a
// buffer at each net's center of gravity through an incremental (ECO)
// session — each insertion is one atomic delta batch that relegalizes
// only the perturbed neighborhood — and then proves parity against the
// full-relegalization path: the same buffers legalized from scratch on a
// clone. Both placements must verify legal, and the session result must
// pass the fixed-point oracle (a full legalization pass over it changes
// nothing).
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"mrlegal"
)

func main() {
	b := mrlegal.GenerateBenchmark(mrlegal.BenchmarkSpec{
		Name: "bufins", NumCells: 3000, Density: 0.68, Seed: 11,
	})
	d, nl := b.D, b.NL
	mrlegal.GlobalPlace(d, nl, mrlegal.GlobalPlaceConfig{Seed: 11})

	l, err := mrlegal.NewLegalizer(d, mrlegal.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		log.Fatal(err)
	}
	hpwl0 := nl.HPWL(d)

	// The full-path clone: the same legal placement, before any buffer
	// exists. The parity check at the end re-legalizes it from scratch
	// with the identical buffer set.
	fullPath := d.Clone()

	// Rank nets by HPWL and pick the 50 longest for buffering.
	type scored struct {
		net  int
		hpwl float64
	}
	var nets []scored
	for ni := range nl.Nets {
		nets = append(nets, scored{ni, nl.NetHPWL(d, ni)})
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i].hpwl > nets[j].hpwl })

	buf := d.AddMaster(mrlegal.Master{Name: "BUF_X4", Width: 3, Height: 1, BottomRail: mrlegal.VSS})

	// An ECO session over the legalized design: every insertion is one
	// delta batch — atomic, locally relegalized, verified afterwards.
	ses, err := mrlegal.NewSession(l)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	type placedBuf struct {
		name   string
		cx, cy float64
	}
	var placed []placedBuf
	inserted, failed := 0, 0
	for _, s := range nets[:50] {
		// Buffer at the net's center of gravity.
		var cx, cy float64
		n := &nl.Nets[s.net]
		for _, p := range n.Pins {
			if p.Cell == mrlegal.NoCell {
				continue
			}
			c := d.Cell(p.Cell)
			cx += float64(c.X) + p.DX
			cy += float64(c.Y) + p.DY
		}
		cx /= float64(len(n.Pins))
		cy /= float64(len(n.Pins))

		name := fmt.Sprintf("buf_%d", s.net)
		rep, err := ses.ApplyDelta(ctx, []mrlegal.Delta{{
			Op: mrlegal.DeltaInsert, Master: buf, TX: cx, TY: cy, Name: name,
		}})
		if err != nil {
			// The batch rolled back: the design is exactly as before this
			// buffer — skip it and keep going.
			failed++
			continue
		}
		inserted++
		res := rep.Results[0]
		placed = append(placed, placedBuf{name: name, cx: cx, cy: cy})
		dist := math.Abs(float64(res.X)-cx) + math.Abs(float64(res.Y)-cy)*10
		if dist > 60 {
			fmt.Printf("  note: buffer %s landed %.1f sites from its ideal spot (dense region)\n", name, dist)
		}
		// Stitch the buffer into the net so HPWL accounting sees it.
		n.Pins = append(n.Pins, mrlegal.Pin{Cell: res.Cell, DX: 1.5, DY: 0.5})
	}
	if !mrlegal.IsLegal(d, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
		log.Fatal("placement became illegal")
	}

	// Parity check 1 — the fixed-point oracle: a full legalization pass
	// over the session's result must be a no-op.
	fixed, err := ses.FixedPoint(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if !fixed {
		log.Fatal("fixed-point oracle failed: full legalization moved cells the session left behind")
	}

	// Parity check 2 — the full path: the identical buffer set added to
	// the pre-insertion clone and legalized from scratch must also land
	// legally. The session path reaches the same contract while touching
	// only each buffer's neighborhood.
	fullBuf := fullPath.AddMaster(mrlegal.Master{Name: "BUF_X4", Width: 3, Height: 1, BottomRail: mrlegal.VSS})
	for _, pb := range placed {
		fullPath.AddCell(pb.name, fullBuf, pb.cx, pb.cy)
	}
	fullPath.ResetPlacement()
	fl, err := mrlegal.NewLegalizer(fullPath, mrlegal.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := fl.Legalize(); err != nil {
		log.Fatalf("full-relegalization path failed: %v", err)
	}
	if !mrlegal.IsLegal(fullPath, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
		log.Fatal("full-relegalization path is illegal")
	}

	stats := ses.Stats()
	fmt.Printf("inserted %d/%d buffers (%d failed); placement legal, fixed-point holds, full path legal\n",
		inserted, inserted+failed, failed)
	fmt.Printf("session: %d batches, %d deltas, %d dirty cells, cache hit rate %.2f\n",
		stats.Batches, stats.Deltas, stats.DirtyCells, stats.CacheHitRate)
	fmt.Printf("HPWL before %.4g, after %.4g (buffers add pins, so a small increase is expected)\n",
		hpwl0, nl.HPWL(d))
}
