// Buffer insertion with instant legalization — the second incremental
// scenario from the paper's introduction: "In buffer insertion, we may
// want to legalize the solution locally to remove overlapping induced by
// the newly inserted buffer."
//
// The example finds the longest nets of a legalized benchmark, inserts a
// buffer at each net's center of gravity, and lets MLL carve out space
// for it; nearby cells shift minimally and the placement stays legal.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"mrlegal"
)

func main() {
	b := mrlegal.GenerateBenchmark(mrlegal.BenchmarkSpec{
		Name: "bufins", NumCells: 3000, Density: 0.68, Seed: 11,
	})
	d, nl := b.D, b.NL
	mrlegal.GlobalPlace(d, nl, mrlegal.GlobalPlaceConfig{Seed: 11})

	l, err := mrlegal.NewLegalizer(d, mrlegal.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		log.Fatal(err)
	}
	hpwl0 := nl.HPWL(d)

	// Rank nets by HPWL and pick the 50 longest for buffering.
	type scored struct {
		net  int
		hpwl float64
	}
	var nets []scored
	for ni := range nl.Nets {
		nets = append(nets, scored{ni, nl.NetHPWL(d, ni)})
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i].hpwl > nets[j].hpwl })

	buf := d.AddMaster(mrlegal.Master{Name: "BUF_X4", Width: 3, Height: 1, BottomRail: mrlegal.VSS})
	inserted, failed := 0, 0
	for _, s := range nets[:50] {
		// Buffer at the net's center of gravity.
		var cx, cy float64
		n := &nl.Nets[s.net]
		for _, p := range n.Pins {
			if p.Cell == mrlegal.NoCell {
				continue
			}
			c := d.Cell(p.Cell)
			cx += float64(c.X) + p.DX
			cy += float64(c.Y) + p.DY
		}
		cx /= float64(len(n.Pins))
		cy /= float64(len(n.Pins))

		id := d.AddCell(fmt.Sprintf("buf_%d", s.net), buf, cx, cy)
		if !l.PlaceCell(id, cx, cy) {
			failed++
			continue
		}
		inserted++
		c := d.Cell(id)
		dist := math.Abs(float64(c.X)-cx) + math.Abs(float64(c.Y)-cy)*10
		if dist > 60 {
			fmt.Printf("  note: buffer %s landed %.1f sites from its ideal spot (dense region)\n", c.Name, dist)
		}
		// Stitch the buffer into the net so HPWL accounting sees it.
		n.Pins = append(n.Pins, mrlegal.Pin{Cell: id, DX: 1.5, DY: 0.5})
	}
	if !mrlegal.IsLegal(d, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
		log.Fatal("placement became illegal")
	}
	fmt.Printf("inserted %d/%d buffers (%d failed); placement legal\n", inserted, inserted+failed, failed)
	fmt.Printf("HPWL before %.4g, after %.4g (buffers add pins, so a small increase is expected)\n",
		hpwl0, nl.HPWL(d))
}
