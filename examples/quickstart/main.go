// Quickstart: build a small design by hand, legalize it, and inspect the
// result. This is the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mrlegal"
)

func main() {
	// A die with 32 rows of 200 sites each. Site = 0.2µm × 2.0µm.
	d := mrlegal.NewDesign("quickstart", 200, 2000)
	d.AddUniformRows(32, mrlegal.Span{Lo: 0, Hi: 200})

	// A tiny library: an inverter, a NAND and a double-height flip-flop.
	inv := d.AddMaster(mrlegal.Master{Name: "INV_X1", Width: 2, Height: 1, BottomRail: mrlegal.VSS})
	nand := d.AddMaster(mrlegal.Master{Name: "NAND2_X1", Width: 3, Height: 1, BottomRail: mrlegal.VSS})
	dff := d.AddMaster(mrlegal.Master{Name: "DFF_X1", Width: 4, Height: 2, BottomRail: mrlegal.VSS})

	// Scatter 600 cells with fractional "global placement" positions.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 600; i++ {
		mi := inv
		switch {
		case i%10 == 0:
			mi = dff
		case i%3 == 0:
			mi = nand
		}
		gx := rng.Float64() * 195
		gy := rng.Float64() * 30
		d.AddCell(fmt.Sprintf("u%d", i), mi, gx, gy)
	}
	fmt.Printf("design %q: %d cells, density %.2f\n", d.Name, len(d.Cells), d.Density())

	// Legalize with the paper's defaults (Rx=30, Ry=5, rails aligned).
	l, err := mrlegal.NewLegalizer(d, mrlegal.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		log.Fatal(err)
	}

	// Every cell now sits on a site, inside rows, overlap-free, with
	// even-height cells on rail-compatible rows.
	if !mrlegal.IsLegal(d, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
		log.Fatal("verification failed")
	}
	total, avg := d.TotalDispSites()
	st := l.Stats()
	fmt.Printf("legalized: total displacement %.1f sites, average %.3f sites/cell\n", total, avg)
	fmt.Printf("stats: %d direct placements, %d MLL calls, %d insertion points evaluated\n",
		st.DirectPlacements, st.MLLCalls, st.InsertionPoints)

	c := d.Cell(0)
	fmt.Printf("cell %s: master %s at site (%d, row %d), orientation %v\n",
		c.Name, d.Lib[c.Master].Name, c.X, c.Y, c.Orient)
}
