//go:build !race

package mrlegal_test

// raceEnabled reports whether the race detector is compiled in; the
// allocation-regression guards skip under it because the race runtime
// changes allocation counts.
const raceEnabled = false
