package mrlegal_test

import (
	"math/rand"
	"testing"

	"mrlegal"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	d := mrlegal.NewDesign("chip", 200, 2000)
	d.AddUniformRows(16, mrlegal.Span{Lo: 0, Hi: 120})
	inv := d.AddMaster(mrlegal.Master{Name: "INV", Width: 2, Height: 1, BottomRail: mrlegal.VSS})
	ff := d.AddMaster(mrlegal.Master{Name: "DFF", Width: 4, Height: 2, BottomRail: mrlegal.VSS})

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		mi := inv
		if i%10 == 0 {
			mi = ff
		}
		d.AddCell("", mi, rng.Float64()*110, rng.Float64()*14)
	}
	l, err := mrlegal.NewLegalizer(d, mrlegal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		t.Fatal(err)
	}
	if !mrlegal.IsLegal(d, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
		t.Fatal("not legal")
	}
	if vs := mrlegal.Verify(d, mrlegal.VerifyOptions{RequirePlaced: true}, 0); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestFacadeIncrementalOps(t *testing.T) {
	d := mrlegal.NewDesign("chip", 200, 2000)
	d.AddUniformRows(8, mrlegal.Span{Lo: 0, Hi: 60})
	m := d.AddMaster(mrlegal.Master{Name: "C", Width: 3, Height: 1, BottomRail: mrlegal.VSS})
	var ids []mrlegal.CellID
	for i := 0; i < 20; i++ {
		ids = append(ids, d.AddCell("", m, float64(3*i%50), float64(i%7)))
	}
	l, err := mrlegal.NewLegalizer(d, mrlegal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		t.Fatal(err)
	}
	if !l.MoveCell(ids[0], 30, 4) {
		t.Fatal("move failed")
	}
	if !l.ResizeCell(ids[1], 5) {
		t.Fatal("resize failed")
	}
	// Insert a new cell into the already-legal design (buffer insertion).
	nb := d.AddCell("buf", m, 25, 3)
	if !l.PlaceCell(nb, 25, 3) {
		t.Fatal("insert failed")
	}
	if !mrlegal.IsLegal(d, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
		t.Fatal("not legal after incremental ops")
	}
}

func TestFacadeBenchmarkAndGP(t *testing.T) {
	b := mrlegal.GenerateBenchmark(mrlegal.BenchmarkSpec{Name: "t", NumCells: 400, Density: 0.5, Seed: 1})
	st := mrlegal.GlobalPlace(b.D, b.NL, mrlegal.GlobalPlaceConfig{Seed: 1})
	if st.MovableCells != 400 {
		t.Fatalf("gp stats %+v", st)
	}
	l, err := mrlegal.NewLegalizer(b.D, mrlegal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		t.Fatal(err)
	}
	if !mrlegal.IsLegal(b.D, mrlegal.VerifyOptions{RequirePlaced: true, PowerAlignment: true}) {
		t.Fatal("not legal")
	}
	if len(mrlegal.Table1Specs(100)) != 20 {
		t.Fatal("Table1Specs wrong")
	}
}
