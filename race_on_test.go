//go:build race

package mrlegal_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
