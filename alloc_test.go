// Allocation-regression guards for the incremental MLL hot path (the
// SingleMLLCall pattern: MoveCell on a legalized design). The engine's
// contract is ≤8 allocs/op with observability disabled; attaching an
// Observer must not add allocations on this path (RecordCell only fires
// in the driver round loop), so the enabled ceiling is a small documented
// headroom above the same floor. Measured on the CI image: 8.00 allocs/op
// in both modes (see docs/OBSERVABILITY.md).
package mrlegal_test

import (
	"testing"

	"mrlegal/internal/core"
	"mrlegal/internal/obs"
)

// maxMoveCellAllocs is the contract for the disabled configuration.
const maxMoveCellAllocs = 8

// maxMoveCellAllocsObs is the documented ceiling with an Observer
// attached (measured equal to the disabled floor; the slack absorbs
// runtime-version jitter, not design regressions).
const maxMoveCellAllocsObs = 10

// moveCellAllocs legalizes a fresh clone of fft_1/200 under cfg and
// returns the steady-state allocations of one MoveCell round trip.
func moveCellAllocs(t *testing.T, cfg core.Config) float64 {
	t.Helper()
	p := prepared2(t, "fft_1", 200)
	d := p.Bench.D.Clone()
	l, err := core.NewLegalizer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Legalize(); err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, len(d.Cells))
	for i := range d.Cells {
		if !d.Cells[i].Fixed {
			ids = append(ids, i)
		}
	}
	i := 0
	return testing.AllocsPerRun(400, func() {
		id := d.Cells[ids[i%len(ids)]].ID
		c := d.Cell(id)
		l.MoveCell(id, float64(c.X+5), float64(c.Y))
		i++
	})
}

// TestSingleMLLCallAllocs pins the disabled-observability hot path to the
// 8 allocs/op contract. DefaultConfig has the extraction cache on, so this
// is also the cache-on steady-state guard: lookups, signature captures and
// snapshot restores must all run out of reused scratch buffers.
func TestSingleMLLCallAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race runtime")
	}
	if avg := moveCellAllocs(t, core.DefaultConfig()); avg > maxMoveCellAllocs {
		t.Errorf("MoveCell with obs disabled: %.2f allocs/op, contract is ≤ %d", avg, maxMoveCellAllocs)
	}
}

// TestSingleMLLCallAllocsCacheOff pins the same contract with the
// extraction cache disabled, so neither cache state regresses the other.
func TestSingleMLLCallAllocsCacheOff(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race runtime")
	}
	cfg := core.DefaultConfig()
	cfg.ExtractCache = false
	if avg := moveCellAllocs(t, cfg); avg > maxMoveCellAllocs {
		t.Errorf("MoveCell with cache disabled: %.2f allocs/op, contract is ≤ %d", avg, maxMoveCellAllocs)
	}
}

// TestSingleMLLCallAllocsObserved pins the obs-enabled ceiling: attaching
// an Observer (metrics + ring, no trace sink) must not put allocations on
// the incremental path.
func TestSingleMLLCallAllocsObserved(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race runtime")
	}
	cfg := core.DefaultConfig()
	cfg.Obs = obs.New(obs.Options{})
	if avg := moveCellAllocs(t, cfg); avg > maxMoveCellAllocsObs {
		t.Errorf("MoveCell with obs enabled: %.2f allocs/op, ceiling is %d", avg, maxMoveCellAllocsObs)
	}
}
