# Standard developer entry points. `make check` is the tier-1 gate:
# everything it runs must pass before a change lands.

GO ?= go

.PHONY: check vet build test race cover fuzz fuzz-search bench-json bench-smoke clean

check: vet build race cover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage floors: internal/obs >= 90%, internal/core no worse than its
# pre-observability level (see scripts/cover.sh and docs/OBSERVABILITY.md).
cover:
	sh scripts/cover.sh

# Short fuzz session over the bookshelf parser (satellite of the
# robustness work; see docs/ROBUSTNESS.md).
fuzz:
	$(GO) test ./internal/bookshelf -fuzz FuzzRead -fuzztime 30s

# Short fuzz session over the best-first-vs-exhaustive search equivalence
# property (docs/PERFORMANCE.md §5).
fuzz-search:
	$(GO) test ./internal/core -run FuzzBestFirstMatchesExhaustive \
		-fuzz FuzzBestFirstMatchesExhaustive -fuzztime 30s

# Regenerate the benchmark artifacts: BENCH_parallel.json (scale-400
# Table-1 flow once per worker count) and BENCH_prune.json (best-first
# search vs exhaustive sweep); see docs/PERFORMANCE.md. Results depend on
# the machine; num_cpu/go_max_procs are recorded in the parallel artifact.
bench-json:
	$(GO) run ./cmd/mrbench -experiment parallel -scale 400 -workers 1,2,4 \
		-json BENCH_parallel.json -no-progress
	$(GO) run ./cmd/mrbench -experiment prune -scale 400 \
		-json BENCH_prune.json -no-progress

# Quick allocation/latency smoke over the MLL hot path (CI gate).
bench-smoke:
	$(GO) test -run xxx -bench 'SingleMLLCall|RegionExtraction|InsertionPointEnumeration' \
		-benchtime 100x -benchmem .

clean:
	$(GO) clean ./...
