# Standard developer entry points. `make check` is the tier-1 gate:
# everything it runs must pass before a change lands.

GO ?= go

.PHONY: check vet build test race cover fuzz fuzz-search fuzz-cache fuzz-constraints fuzz-submit fuzz-tune fuzz-eco bench-json bench-smoke bench-shard-smoke bench-tune-smoke bench-constraint-smoke bench-eco-smoke serve-smoke clean

check: vet build race cover bench-tune-smoke bench-eco-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage floors: internal/obs >= 90%, internal/core no worse than its
# pre-observability level (see scripts/cover.sh and docs/OBSERVABILITY.md).
cover:
	sh scripts/cover.sh

# Short fuzz session over the bookshelf parser (satellite of the
# robustness work; see docs/ROBUSTNESS.md).
fuzz:
	$(GO) test ./internal/bookshelf -fuzz FuzzRead -fuzztime 30s

# Short fuzz session over the best-first-vs-exhaustive search equivalence
# property (docs/PERFORMANCE.md §5).
fuzz-search:
	$(GO) test ./internal/core -run FuzzBestFirstMatchesExhaustive \
		-fuzz FuzzBestFirstMatchesExhaustive -fuzztime 30s

# Short fuzz session over the extraction-cache soundness property: a
# snapshot accepted by validation must equal a fresh extraction after any
# Insert/Remove/ShiftX interleaving (docs/PERFORMANCE.md §6).
fuzz-cache:
	$(GO) test ./internal/core -run FuzzCachedExtractionMatchesFresh \
		-fuzz FuzzCachedExtractionMatchesFresh -fuzztime 30s

# Short fuzz session over the constraint-plugin admissibility property:
# every plugin's lower-bound term must stay below the realized horizontal
# cost of any candidate its own filters admit, and the best-first search
# under an armed set must reproduce the exhaustive sweep bit for bit
# (docs/CONSTRAINTS.md).
fuzz-constraints:
	$(GO) test ./internal/core -run FuzzConstraintLowerBound \
		-fuzz FuzzConstraintLowerBound -fuzztime 30s

# Constraint-plugin differential smoke (CI gate): each plugin alone and
# all three composed must produce byte-identical placements across
# workers x shards x search modes under the race detector, pass the
# plugins' verify.Check oracles with zero violations, and never leak a
# cached verdict across rule configurations (docs/CONSTRAINTS.md).
bench-constraint-smoke:
	$(GO) test -race -short ./internal/core \
		-run 'TestConstraintPluginsMatchAcrossModes|TestConstraintFiltersActuallyFire|TestConstraintLowerBoundProperty|TestCacheConstraintEpochIsolation'
	$(GO) test -race ./internal/experiments -run TestGoldenConstraintPlacements

# Regenerate the benchmark artifacts: BENCH_parallel.json (scale-400
# Table-1 flow once per worker count), BENCH_prune.json (best-first search
# vs exhaustive sweep), BENCH_cache.json (extraction cache off vs on),
# BENCH_shard.json (spatial sharding size x K sweep), BENCH_tune.json
# (adaptive search guidance: exhaustive / static / online / replay) and
# BENCH_eco.json (incremental session delta batches vs full
# relegalization); see docs/PERFORMANCE.md. Results depend on the
# machine; num_cpu, go_max_procs and speedup_valid are recorded in the
# parallel, shard and eco artifacts — on a single-CPU box every speedup
# field is suppressed.
bench-json:
	$(GO) run ./cmd/mrbench -experiment parallel -scale 400 -workers 1,2,4 \
		-json BENCH_parallel.json -no-progress
	$(GO) run ./cmd/mrbench -experiment prune -scale 400 \
		-json BENCH_prune.json -no-progress
	$(GO) run ./cmd/mrbench -experiment cache -scale 200 -rx 4 -ry 1 \
		-json BENCH_cache.json -no-progress
	$(GO) run ./cmd/mrbench -experiment shard -sizes 5000,20000 -shards 1,2,4,8 \
		-json BENCH_shard.json -no-progress
	$(GO) run ./cmd/mrbench -experiment tune -scale 400 -rx 60 -ry 10 \
		-json BENCH_tune.json -no-progress
	$(GO) run ./cmd/mrbench -experiment eco -sizes 5000,20000 \
		-delta-fracs 0.001,0.01,0.05 -json BENCH_eco.json -no-progress

# Shard-parity smoke (CI gate): a small design legalized with 4 spatial
# shards under the race detector must be byte-identical to the serial
# run across both search modes and cache states, with zero claim-board
# traffic (docs/PERFORMANCE.md §7).
bench-shard-smoke:
	$(GO) test -race -short ./internal/core \
		-run 'TestShardMatchesSerialAcrossK|TestShardZeroClaimTraffic'

# Search-guidance equivalence smoke (CI gate): Tune=off must hold the
# pinned golden checksums, the tune unit suite must pass, and a replayed
# policy log must reproduce the online run's placement checksum across
# workers {1,4} x shards {1,4} under the race detector
# (docs/PERFORMANCE.md §8).
bench-tune-smoke:
	$(GO) test -race ./internal/tune
	$(GO) test -race ./internal/experiments \
		-run 'TestTuneReplayMatchesOnline|TestTuneOffMatchesUntuned|TestGoldenPlacements'

# Short fuzz session over the policy-log round-trip property: decoding
# arbitrary bytes never panics, and an accepted log re-encodes to the
# same decision sequence (docs/PERFORMANCE.md §8).
fuzz-tune:
	$(GO) test ./internal/tune -run FuzzPolicyLogRoundTrip \
		-fuzz FuzzPolicyLogRoundTrip -fuzztime 30s

# Short fuzz session over the job-submission decoder — the boundary
# between the network and the engine (docs/SERVICE.md).
fuzz-submit:
	$(GO) test ./internal/service -run FuzzDecodeSubmit \
		-fuzz FuzzDecodeSubmit -fuzztime 30s

# Short fuzz session over the ECO delta-frame decoder: malformed frames
# and hostile JSON must map to stable bad_request errors, never a panic
# (docs/SERVICE.md §8).
fuzz-eco:
	$(GO) test ./internal/service -run FuzzDecodeDelta \
		-fuzz FuzzDecodeDelta -fuzztime 30s

# ECO-equivalence smoke (CI gate): on a Table-1 subset, session delta
# batches applied over designs legalized with workers {1,4} x extraction
# cache on/off must stay legal, pass the fixed-point oracle, and produce
# cache-independent placements; plus the session engine's own suite and
# the eco benchmark plumbing, all under the race detector
# (docs/PERFORMANCE.md §9).
bench-eco-smoke:
	$(GO) test -race -short ./internal/core -run 'TestSession'
	$(GO) test -race ./internal/experiments -run 'TestEcoEquivalence|TestRunEcoSmoke'
	$(GO) test -race ./internal/service -run 'TestSession'

# End-to-end exercise of the job server: build mrserve, submit a bench
# over HTTP, compare the placement checksum against a direct library
# call, and require a clean SIGTERM drain (docs/SERVICE.md; CI gate).
serve-smoke:
	$(GO) run ./scripts/servesmoke

# Quick allocation/latency smoke over the MLL hot path (CI gate).
bench-smoke:
	$(GO) test -run xxx -bench 'SingleMLLCall|RegionExtraction|InsertionPointEnumeration' \
		-benchtime 100x -benchmem .

clean:
	$(GO) clean ./...
