# Standard developer entry points. `make check` is the tier-1 gate:
# everything it runs must pass before a change lands.

GO ?= go

.PHONY: check vet build test race fuzz clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz session over the bookshelf parser (satellite of the
# robustness work; see docs/ROBUSTNESS.md).
fuzz:
	$(GO) test ./internal/bookshelf -fuzz FuzzRead -fuzztime 30s

clean:
	$(GO) clean ./...
